"""Seeded protocol-coherence violation (PRT003).

A device that disables the source/drain mirror symmetry while keeping
the default (vds >= 0 only) operating box: the surrogate compiler
would mirror currents that are not mirror-symmetric.
"""


class AsymmetricDevice:
    mirror_symmetric = False  # seeded: PRT003

    def current(self, vgs: float, vds: float) -> float:
        return 1e-6 * vgs * vds

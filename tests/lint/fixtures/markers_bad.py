"""Marker-protocol fixtures: one working marker, one LNT001, one LNT002."""

import numpy as np


def documented_entropy():
    # repro-lint: ok[RNG001] -- test-bed double of the sanctioned entropy boundary
    return np.random.default_rng()


def undocumented_entropy():
    # repro-lint: ok[RNG001]
    return np.random.default_rng()


def no_write_here():
    value = 1  # repro-lint: ok[IOW001] -- stale by construction: nothing here writes
    return value

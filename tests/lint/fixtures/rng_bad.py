"""Seeded RNG-discipline violations for the linter test-bed.

This module is lint bait: it is parsed, never imported.  Lines tagged
``# seeded: RULE`` must each raise exactly that rule and nothing else.
"""

import random  # seeded: RNG003
import time

import numpy as np


def sample_without_seed():
    rng = np.random.default_rng()  # seeded: RNG001
    return rng.normal()


def fresh_entropy_root():
    return np.random.SeedSequence()  # seeded: RNG002


def timestamped_result():
    stamp = time.time()  # seeded: RNG004
    return stamp, random.random()

"""Seeded device-registry violations (FPR003/PRT001/PRT002).

Unlike the AST fixtures this module IS imported (by the registry pass),
so the classes must be real, concrete FETModel subclasses.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import FETModel


class ShadowingFET(FETModel):
    """Overrides the batched path directly instead of _forward_currents."""

    def current(self, vgs: float, vds: float) -> float:
        return 1e-6 * vgs * vds

    def currents(self, vgs_values, vds_values):  # seeded: PRT001
        vgs, vds = np.broadcast_arrays(
            np.asarray(vgs_values, dtype=float),
            np.asarray(vds_values, dtype=float),
        )
        return 1e-6 * vgs * vds

    def surrogate_token(self):
        return ("ShadowingFET",)


class HalfLinearizedFET(FETModel):
    """Overrides the batched small-signal path but not the scalar one."""

    def current(self, vgs: float, vds: float) -> float:
        return 1e-6 * vgs * vds

    def linearize(self, vgs_values, vds_values):  # seeded: PRT002
        raise NotImplementedError("fixture device")

    def surrogate_token(self):
        return ("HalfLinearizedFET",)


class TokenlessFET(FETModel):  # seeded: FPR003
    """Neither a dataclass nor content-addressable."""

    def current(self, vgs: float, vds: float) -> float:
        return 1e-6 * vgs * vds

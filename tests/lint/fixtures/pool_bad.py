"""Seeded pool-kernel and merge-boundary violations (PKN001/PKN002/MRG001)."""

from repro.circuit.sweep import SweepPlan

_TALLY = 0


def counting_kernel(params, rng, payload):
    global _TALLY  # seeded: PKN002
    _TALLY += 1
    return [float(p) for p in params]


def block_kernel(params_block, rng, payload):
    return [float(p) for p in params_block]


LAMBDA_PLAN = SweepPlan(lambda params, rng, payload: params)  # seeded: PKN001
COUNTING_PLAN = SweepPlan(counting_kernel)
UNVALIDATED_PLAN = SweepPlan(block_kernel, vectorized=True)  # seeded: MRG001

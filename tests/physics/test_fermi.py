"""Fermi-Dirac statistics: limits, symmetry, numerical safety."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.physics.fermi import (
    fermi_dirac,
    fermi_integral_f0,
    fermi_integral_fm1,
    occupation_window,
)


class TestFermiDirac:
    def test_half_at_chemical_potential(self):
        assert fermi_dirac(0.3, 0.3) == pytest.approx(0.5)

    def test_limits(self):
        assert fermi_dirac(-10.0, 0.0) == pytest.approx(1.0)
        assert fermi_dirac(10.0, 0.0) == pytest.approx(0.0, abs=1e-30)

    def test_vectorised(self):
        values = fermi_dirac(np.array([-1.0, 0.0, 1.0]), 0.0)
        assert values.shape == (3,)
        assert np.all(np.diff(values) < 0.0)

    def test_temperature_sharpens_step(self):
        warm = fermi_dirac(0.05, 0.0, temperature_k=300.0)
        cold = fermi_dirac(0.05, 0.0, temperature_k=30.0)
        assert cold < warm

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            fermi_dirac(0.0, 0.0, temperature_k=-1.0)

    def test_no_overflow_for_extreme_energies(self):
        # Clipped exponent: result is denormal-small, never NaN/overflow.
        assert fermi_dirac(1e6, 0.0) < 1e-200
        assert fermi_dirac(-1e6, 0.0) == pytest.approx(1.0)

    @given(st.floats(-50, 50))
    def test_particle_hole_symmetry(self, eta):
        # f(E - mu) + f(mu - E) = 1
        e = eta * 0.0259
        assert fermi_dirac(e, 0.0) + fermi_dirac(-e, 0.0) == pytest.approx(1.0)


class TestF0Integral:
    def test_matches_log1p_exp(self):
        for eta in (-5.0, -1.0, 0.0, 1.0, 5.0):
            assert fermi_integral_f0(eta) == pytest.approx(math.log1p(math.exp(eta)))

    def test_large_positive_limit_is_linear(self):
        assert fermi_integral_f0(500.0) == pytest.approx(500.0)

    def test_large_negative_limit_is_exponential(self):
        assert fermi_integral_f0(-50.0) == pytest.approx(math.exp(-50.0), rel=1e-6)

    def test_at_zero(self):
        assert fermi_integral_f0(0.0) == pytest.approx(math.log(2.0))

    def test_vectorised_shape(self):
        out = fermi_integral_f0(np.linspace(-5, 5, 11))
        assert out.shape == (11,)

    @given(st.floats(-100, 100))
    def test_monotone_increasing(self, eta):
        assert fermi_integral_f0(eta + 0.1) > fermi_integral_f0(eta)

    @given(st.floats(-100, 100))
    def test_always_positive(self, eta):
        assert fermi_integral_f0(eta) > 0.0

    @given(st.floats(-30, 30), st.floats(1e-4, 0.5))
    def test_derivative_is_fm1(self, eta, h):
        numeric = (fermi_integral_f0(eta + h) - fermi_integral_f0(eta - h)) / (2 * h)
        analytic = fermi_integral_fm1(eta)
        assert numeric == pytest.approx(analytic, rel=0.05, abs=1e-6)


class TestOccupationWindow:
    def test_contains_both_potentials(self):
        lo, hi = occupation_window(0.0, -0.5)
        assert lo < -0.5 and hi > 0.0

    def test_coverage_scales_window(self):
        lo1, hi1 = occupation_window(0.0, 0.0, coverage=10.0)
        lo2, hi2 = occupation_window(0.0, 0.0, coverage=20.0)
        assert lo2 < lo1 and hi2 > hi1

"""Subband container: dispersion, DOS, mode count, validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.physics.bands import BandStructure1D, Subband
from repro.physics.constants import HBAR, Q, VFERMI


@pytest.fixture
def subband():
    return Subband(edge_ev=0.28, degeneracy=4)


class TestSubband:
    def test_rejects_negative_edge(self):
        with pytest.raises(ValueError):
            Subband(edge_ev=-0.1)

    def test_rejects_bad_degeneracy(self):
        with pytest.raises(ValueError):
            Subband(edge_ev=0.1, degeneracy=0)

    def test_dispersion_at_k0_is_edge(self, subband):
        assert subband.energy_ev(0.0) == pytest.approx(0.28)

    def test_dispersion_asymptote_is_linear(self, subband):
        k = 5e9  # far above the edge
        expected = HBAR * VFERMI * k / Q
        assert subband.energy_ev(k) == pytest.approx(expected, rel=1e-2)

    def test_wavevector_inverts_dispersion(self, subband):
        for e in (0.3, 0.5, 1.0):
            k = subband.wavevector_per_m(e)
            assert subband.energy_ev(k) == pytest.approx(e, rel=1e-10)

    def test_wavevector_below_edge_is_zero(self, subband):
        assert subband.wavevector_per_m(0.1) == pytest.approx(0.0)

    def test_velocity_zero_at_edge_limits_to_vf(self, subband):
        assert subband.velocity_m_per_s(0.28) == pytest.approx(0.0, abs=1e-3)
        assert subband.velocity_m_per_s(50.0) == pytest.approx(VFERMI, rel=1e-3)

    def test_effective_mass_from_edge(self, subband):
        # m* = E_edge / v_F^2; for 0.28 eV and v_F ~ 9.7e5 this is ~0.05 m0.
        m_star = subband.effective_mass_kg
        assert m_star == pytest.approx(0.28 * Q / VFERMI**2)
        assert 0.02e-30 < m_star < 0.1e-30 * 9.109  # sanity vs m0 scale

    def test_metallic_subband_massless(self):
        assert Subband(edge_ev=0.0).effective_mass_kg == 0.0

    def test_dos_zero_below_edge(self, subband):
        assert subband.dos_per_ev_per_m(0.2) == 0.0

    def test_dos_diverges_at_edge(self, subband):
        assert np.isinf(subband.dos_per_ev_per_m(0.28))

    def test_dos_asymptote(self, subband):
        # D -> g / (pi hbar v_F) far above the edge.
        expected = 4.0 / (np.pi * HBAR * VFERMI / Q)
        assert subband.dos_per_ev_per_m(100.0) == pytest.approx(expected, rel=1e-3)

    def test_metallic_dos_constant(self):
        band = Subband(edge_ev=0.0, degeneracy=4)
        d1 = band.dos_per_ev_per_m(0.1)
        d2 = band.dos_per_ev_per_m(1.0)
        assert d1 == pytest.approx(d2, rel=1e-9)
        # ~2 states per eV per nm for a metallic CNT — the textbook value.
        assert d1 * 1e-9 == pytest.approx(2.0, rel=0.05)

    @given(st.floats(0.29, 10.0))
    def test_dos_positive_above_edge(self, energy):
        band = Subband(edge_ev=0.28)
        assert band.dos_per_ev_per_m(energy) > 0.0


class TestBandStructure1D:
    def test_requires_subbands(self):
        with pytest.raises(ValueError):
            BandStructure1D(subbands=())

    def test_requires_sorted_edges(self):
        with pytest.raises(ValueError):
            BandStructure1D(subbands=(Subband(0.5), Subband(0.2)))

    def test_gap_is_twice_first_edge(self):
        bands = BandStructure1D(subbands=(Subband(0.28), Subband(0.56)))
        assert bands.gap_ev == pytest.approx(0.56)
        assert bands.is_semiconducting

    def test_metallic_detection(self):
        bands = BandStructure1D(subbands=(Subband(0.0),))
        assert not bands.is_semiconducting

    def test_total_dos_adds_subbands(self):
        b1 = Subband(0.28)
        b2 = Subband(0.56)
        bands = BandStructure1D(subbands=(b1, b2))
        e = 1.0
        assert bands.dos_per_ev_per_m(e) == pytest.approx(
            b1.dos_per_ev_per_m(e) + b2.dos_per_ev_per_m(e)
        )

    def test_mode_count_steps(self):
        bands = BandStructure1D(subbands=(Subband(0.28, 4), Subband(0.56, 4)))
        assert bands.mode_count(0.1) == 0
        assert bands.mode_count(0.4) == 4
        assert bands.mode_count(1.0) == 8

"""Armchair GNR: width families, tight-binding gaps, degeneracy."""

import pytest
from hypothesis import given, strategies as st

from repro.physics.gnr import GNR_DEGENERACY, ArmchairGNR, gnr_for_gap


class TestGeometry:
    def test_rejects_tiny_ribbons(self):
        with pytest.raises(ValueError):
            ArmchairGNR(2)

    def test_width_formula(self):
        # W = (N-1) * sqrt(3)/2 * a_cc; N = 18 -> ~2.09 nm (paper's 2.1 nm).
        assert ArmchairGNR(18).width_nm == pytest.approx(2.09, abs=0.02)

    @given(st.integers(3, 120))
    def test_width_increases_with_n(self, n):
        assert ArmchairGNR(n + 1).width_nm > ArmchairGNR(n).width_nm


class TestFamilies:
    def test_3j2_family_quasi_metallic(self):
        for n in (5, 8, 11, 14, 17):
            assert ArmchairGNR(n).bandgap_ev() == pytest.approx(0.0, abs=1e-9)
            assert not ArmchairGNR(n).is_semiconducting

    def test_other_families_gapped(self):
        for n in (6, 7, 9, 10, 12, 13):
            assert ArmchairGNR(n).bandgap_ev() > 0.05

    @given(st.integers(3, 90))
    def test_family_index(self, n):
        assert ArmchairGNR(n).family == n % 3

    def test_gap_decreases_within_family(self):
        gaps = [ArmchairGNR(n).bandgap_ev() for n in (7, 10, 13, 16, 19)]
        assert all(a > b for a, b in zip(gaps, gaps[1:]))

    def test_gap_roughly_inverse_width(self):
        # E_g ~ 0.8-1.0 eV nm / W for the semiconducting families.
        for n in (10, 16, 22, 34):
            ribbon = ArmchairGNR(n)
            product = ribbon.bandgap_ev() * ribbon.width_nm
            assert 0.5 < product < 1.5


class TestSubbands:
    def test_edges_sorted(self):
        edges = ArmchairGNR(18).subband_edges_ev()
        assert edges == sorted(edges)

    def test_edge_count_full_and_truncated(self):
        ribbon = ArmchairGNR(12)
        assert len(ribbon.subband_edges_ev()) == 12
        assert len(ribbon.subband_edges_ev(count=3)) == 3

    def test_count_validation(self):
        with pytest.raises(ValueError):
            ArmchairGNR(12).subband_edges_ev(count=0)

    def test_band_structure_spin_only_degeneracy(self):
        bands = ArmchairGNR(18).band_structure(2)
        assert all(b.degeneracy == GNR_DEGENERACY for b in bands.subbands)
        assert GNR_DEGENERACY == 2  # half of the CNT's 4 — Fig. 1(b) difference

    def test_band_structure_gap(self):
        ribbon = ArmchairGNR(18)
        assert ribbon.band_structure().gap_ev == pytest.approx(ribbon.bandgap_ev())


class TestGnrForGap:
    def test_paper_target(self):
        ribbon = gnr_for_gap(0.56)
        assert ribbon.is_semiconducting
        assert ribbon.bandgap_ev() == pytest.approx(0.56, abs=0.05)
        # Paper: 2.1 nm wide ribbon has a 0.56 eV gap.
        assert ribbon.width_nm == pytest.approx(2.1, abs=0.3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gnr_for_gap(-0.5)

    @given(st.floats(0.3, 1.2))
    def test_reasonable_match(self, gap):
        ribbon = gnr_for_gap(gap)
        assert abs(ribbon.bandgap_ev() - gap) / gap < 0.25

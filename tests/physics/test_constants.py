"""Constants: values, derived quantities, thermal helpers."""

import math

import pytest

from repro.physics import constants


class TestFundamentalValues:
    def test_elementary_charge(self):
        assert constants.Q == pytest.approx(1.602176634e-19)

    def test_hbar_is_h_over_2pi(self):
        assert constants.HBAR == pytest.approx(constants.H / (2 * math.pi))

    def test_boltzmann_in_ev(self):
        assert constants.KB_EV == pytest.approx(8.617e-5, rel=1e-3)


class TestGrapheneParameters:
    def test_lattice_constant_from_bond_length(self):
        assert constants.A_LATTICE_NM == pytest.approx(0.246, rel=1e-2)

    def test_fermi_velocity_near_1e6(self):
        # v_F = 3 a_cc gamma0 / (2 hbar) ~ 9.7e5 m/s for gamma0 = 3 eV.
        assert 9.0e5 < constants.VFERMI < 1.05e6

    def test_quantum_resistance_values(self):
        assert constants.R0_OHM == pytest.approx(12906, rel=1e-3)
        assert constants.CNT_QUANTUM_RESISTANCE_OHM == pytest.approx(6453, rel=1e-3)

    def test_conductance_quantum_consistency(self):
        assert constants.G0 * constants.R0_OHM == pytest.approx(1.0)


class TestThermalHelpers:
    def test_thermal_voltage_at_300k(self):
        assert constants.thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_thermal_voltage_scales_linearly(self):
        assert constants.thermal_voltage(600.0) == pytest.approx(
            2 * constants.thermal_voltage(300.0)
        )

    def test_thermal_voltage_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            constants.thermal_voltage(0.0)
        with pytest.raises(ValueError):
            constants.thermal_voltage(-10.0)

    def test_subthreshold_limit_at_room_temperature(self):
        # The famous ~60 mV/dec limit quoted in Section IV.
        limit = constants.subthreshold_limit_mv_per_decade(300.0)
        assert limit == pytest.approx(59.5, abs=0.5)

    def test_subthreshold_limit_drops_when_cold(self):
        assert constants.subthreshold_limit_mv_per_decade(
            77.0
        ) < constants.subthreshold_limit_mv_per_decade(300.0)

"""Gate electrostatics: capacitances, dark space, scale length, SS/DIBL."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.physics.cnt import Chirality
from repro.physics.electrostatics import (
    CNT_CHANNEL,
    ChannelMaterial,
    EPS_SIO2,
    INAS,
    INGAAS,
    SILICON,
    barrier_control_factor,
    dibl_mv_per_v,
    gate_all_around_capacitance,
    inversion_eot_nm,
    quantum_capacitance_per_m,
    ribbon_plate_capacitance,
    scale_length_nm,
    subthreshold_swing_mv_per_decade,
    wire_over_plane_capacitance,
)


class TestGeometricCapacitances:
    def test_gaa_formula(self):
        # d = 1.5, t = 3, eps = 16: C' = 2 pi e0 16 / ln(5).
        expected = 2 * math.pi * 8.854e-12 * 16 / math.log(5.0)
        assert gate_all_around_capacitance(1.5, 3.0, 16.0) == pytest.approx(
            expected, rel=1e-3
        )

    def test_gaa_increases_with_eps_decreases_with_tox(self):
        base = gate_all_around_capacitance(1.5, 3.0, 16.0)
        assert gate_all_around_capacitance(1.5, 3.0, 25.0) > base
        assert gate_all_around_capacitance(1.5, 6.0, 16.0) < base

    def test_gaa_beats_back_gate(self):
        gaa = gate_all_around_capacitance(1.5, 3.0, 16.0)
        back = wire_over_plane_capacitance(1.5, 3.0, 16.0)
        assert gaa > back

    def test_invalid_arguments(self):
        for fn in (gate_all_around_capacitance, wire_over_plane_capacitance):
            with pytest.raises(ValueError):
                fn(-1.0, 3.0, 16.0)
            with pytest.raises(ValueError):
                fn(1.5, 0.0, 16.0)

    def test_ribbon_capacitance_scales_with_width(self):
        narrow = ribbon_plate_capacitance(2.0, 3.0, 16.0)
        wide = ribbon_plate_capacitance(10.0, 3.0, 16.0)
        assert wide > narrow

    def test_ribbon_fringe_only_adds(self):
        bare = ribbon_plate_capacitance(5.0, 3.0, 16.0, fringe_factor=0.0)
        fringed = ribbon_plate_capacitance(5.0, 3.0, 16.0, fringe_factor=1.5)
        assert fringed > bare


class TestQuantumCapacitance:
    def test_small_far_below_band(self, chirality_056: Chirality):
        bands = chirality_056.band_structure(2)
        deep = quantum_capacitance_per_m(bands, -1.0)
        at_edge = quantum_capacitance_per_m(bands, bands.subbands[0].edge_ev)
        assert deep < at_edge / 1e3

    def test_order_of_magnitude_at_edge(self, chirality_056: Chirality):
        # C_Q of a CNT near the band edge is a few 1e-10 F/m (~4 pF/cm).
        bands = chirality_056.band_structure(2)
        cq = quantum_capacitance_per_m(bands, bands.subbands[0].edge_ev + 0.05)
        assert 1e-10 < cq < 3e-9

    def test_increases_with_occupancy(self, chirality_056: Chirality):
        bands = chirality_056.band_structure(2)
        edge = bands.subbands[0].edge_ev
        assert quantum_capacitance_per_m(bands, edge + 0.1) > quantum_capacitance_per_m(
            bands, edge - 0.2
        )


class TestDarkSpace:
    def test_cnt_has_no_dark_space(self):
        assert CNT_CHANNEL.dark_space_nm == 0.0
        assert inversion_eot_nm(0.7, CNT_CHANNEL) == pytest.approx(0.7)

    def test_penalty_ordering(self):
        # Low-DOS III-V materials pay the most (Skotnicki & Boeuf).
        eot = 0.7
        penalties = {
            m.name: inversion_eot_nm(eot, m) - eot for m in (SILICON, INGAAS, INAS)
        }
        assert penalties["Si"] < penalties["InGaAs"] < penalties["InAs"]

    def test_penalty_formula(self):
        mat = ChannelMaterial("X", eps_r=10.0, dark_space_nm=1.0)
        assert inversion_eot_nm(1.0, mat) == pytest.approx(1.0 + EPS_SIO2 / 10.0)

    def test_rejects_bad_eot(self):
        with pytest.raises(ValueError):
            inversion_eot_nm(0.0, SILICON)

    def test_material_validation(self):
        with pytest.raises(ValueError):
            ChannelMaterial("bad", eps_r=-1.0, dark_space_nm=0.5)


class TestScaleLength:
    def test_geometry_hierarchy(self):
        # GAA < double gate < planar — Section III.A's scaling argument.
        planar = scale_length_nm(SILICON, 0.7, "planar")
        double = scale_length_nm(SILICON, 0.7, "double-gate")
        gaa = scale_length_nm(SILICON, 0.7, "gaa")
        assert gaa < double < planar

    def test_unknown_geometry(self):
        with pytest.raises(ValueError):
            scale_length_nm(SILICON, 0.7, "tri-something")

    def test_cnt_shortest_scale_length(self):
        cnt = scale_length_nm(CNT_CHANNEL, 0.7, "gaa")
        si = scale_length_nm(SILICON, 0.7, "gaa")
        inas = scale_length_nm(INAS, 0.7, "gaa")
        assert cnt < si < inas


class TestSSandDIBL:
    def test_long_channel_reaches_thermal_limit(self):
        ss = subthreshold_swing_mv_per_decade(1000.0, 5.0)
        assert ss == pytest.approx(59.5, abs=1.0)

    def test_short_channel_degrades(self):
        long_ss = subthreshold_swing_mv_per_decade(100.0, 5.0)
        short_ss = subthreshold_swing_mv_per_decade(10.0, 5.0)
        assert short_ss > long_ss

    def test_body_factor_multiplies(self):
        base = subthreshold_swing_mv_per_decade(100.0, 5.0)
        assert subthreshold_swing_mv_per_decade(
            100.0, 5.0, body_factor=1.3
        ) == pytest.approx(1.3 * base)

    def test_body_factor_validation(self):
        with pytest.raises(ValueError):
            subthreshold_swing_mv_per_decade(100.0, 5.0, body_factor=0.9)

    def test_dibl_decays_with_length(self):
        assert dibl_mv_per_v(10.0, 5.0) > dibl_mv_per_v(30.0, 5.0)

    def test_dibl_capped_at_1000(self):
        assert dibl_mv_per_v(0.1, 100.0) == pytest.approx(1000.0)

    @given(st.floats(5.0, 100.0), st.floats(1.0, 10.0))
    def test_barrier_control_in_unit_interval(self, length, lam):
        control = barrier_control_factor(length, lam)
        assert 0.0 < control <= 1.0

    @given(st.floats(5.0, 100.0), st.floats(1.0, 10.0))
    def test_ss_never_below_thermal_limit(self, length, lam):
        assert subthreshold_swing_mv_per_decade(length, lam) >= 59.0

"""CNT chirality: geometry, metallicity rule, zone-folded subbands."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.physics.cnt import (
    CNT_DEGENERACY,
    Chirality,
    chirality_for_gap,
    enumerate_chiralities,
)

chirality_indices = st.integers(1, 30).flatmap(
    lambda n: st.tuples(st.just(n), st.integers(0, n))
)


class TestGeometry:
    def test_canonical_form_enforced(self):
        with pytest.raises(ValueError):
            Chirality(3, 5)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            Chirality(0, 0)

    def test_known_diameters(self):
        # Textbook values: (10,10) ~ 1.36 nm, (17,0) ~ 1.33 nm, (19,0) ~ 1.49 nm.
        assert Chirality(10, 10).diameter_nm == pytest.approx(1.356, abs=0.01)
        assert Chirality(17, 0).diameter_nm == pytest.approx(1.33, abs=0.01)
        assert Chirality(19, 0).diameter_nm == pytest.approx(1.49, abs=0.01)

    def test_chiral_angles(self):
        assert Chirality(10, 0).chiral_angle_deg == pytest.approx(0.0)
        assert Chirality(10, 10).chiral_angle_deg == pytest.approx(30.0)
        assert 0.0 < Chirality(10, 5).chiral_angle_deg < 30.0

    @given(chirality_indices)
    def test_diameter_positive_and_angle_bounded(self, nm):
        c = Chirality(*nm)
        assert c.diameter_nm > 0.0
        assert -1e-9 <= c.chiral_angle_deg <= 30.0 + 1e-9


class TestMetallicityRule:
    def test_armchair_always_metallic(self):
        for n in range(1, 15):
            assert Chirality(n, n).is_metallic

    def test_zigzag_every_third_metallic(self):
        for n in range(3, 30, 3):
            assert Chirality(n, 0).is_metallic
        assert Chirality(10, 0).is_semiconducting
        assert Chirality(11, 0).is_semiconducting

    @given(chirality_indices)
    def test_rule_matches_mod3(self, nm):
        c = Chirality(*nm)
        assert c.is_metallic == ((c.n - c.m) % 3 == 0)

    @given(chirality_indices)
    def test_metallic_iff_zero_gap(self, nm):
        c = Chirality(*nm)
        assert (c.bandgap_ev() == 0.0) == c.is_metallic


class TestBandgap:
    def test_inverse_diameter_scaling(self):
        small = Chirality(10, 0)  # d ~ 0.78 nm
        large = Chirality(20, 0)  # d ~ 1.57 nm
        ratio = small.bandgap_ev() / large.bandgap_ev()
        assert ratio == pytest.approx(large.diameter_nm / small.diameter_nm, rel=1e-9)

    def test_gap_value_085_over_d(self):
        c = Chirality(19, 0)
        assert c.bandgap_ev() == pytest.approx(0.852 / c.diameter_nm, rel=1e-2)

    def test_gamma0_scales_gap(self):
        c = Chirality(19, 0)
        assert c.bandgap_ev(gamma0_ev=2.7) == pytest.approx(
            c.bandgap_ev(3.0) * 2.7 / 3.0
        )


class TestSubbandLadder:
    def test_semiconducting_ladder_1_2_4(self):
        c = Chirality(19, 0)
        edges = c.subband_edges_ev(4)
        scale = edges[0]
        ratios = [e / scale for e in edges]
        assert ratios == pytest.approx([1.0, 2.0, 4.0, 5.0], rel=1e-9)

    def test_metallic_ladder_0_3_3(self):
        edges = Chirality(10, 10).subband_edges_ev(3)
        assert edges[0] == pytest.approx(0.0)
        assert edges[1] == pytest.approx(edges[2])
        assert edges[1] > 0.0

    def test_first_edge_is_half_gap(self):
        c = Chirality(15, 7)
        assert c.subband_edges_ev(1)[0] == pytest.approx(c.bandgap_ev() / 2.0)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            Chirality(10, 0).subband_edges_ev(0)


class TestBandStructureFactory:
    def test_band_structure_metadata(self):
        c = Chirality(15, 7)
        bands = c.band_structure(3)
        assert len(bands.subbands) == 3
        assert bands.metadata["chirality"] == (15, 7)
        assert all(b.degeneracy == CNT_DEGENERACY for b in bands.subbands)

    def test_band_structure_gap_matches(self):
        c = Chirality(15, 7)
        assert c.band_structure().gap_ev == pytest.approx(c.bandgap_ev())


class TestEnumeration:
    def test_window_respected(self):
        tubes = enumerate_chiralities(1.0, 1.5)
        assert tubes
        assert all(1.0 <= t.diameter_nm <= 1.5 for t in tubes)

    def test_sorted_by_diameter(self):
        tubes = enumerate_chiralities(0.8, 2.0)
        diameters = [t.diameter_nm for t in tubes]
        assert diameters == sorted(diameters)

    def test_semiconducting_share_near_two_thirds(self):
        tubes = enumerate_chiralities(0.8, 2.2)
        share = sum(t.is_semiconducting for t in tubes) / len(tubes)
        assert 0.6 < share < 0.72

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            enumerate_chiralities(2.0, 1.0)
        with pytest.raises(ValueError):
            enumerate_chiralities(-1.0, 1.0)


class TestChiralityForGap:
    def test_paper_gap_finds_15_7_class_tube(self):
        c = chirality_for_gap(0.56)
        assert c.is_semiconducting
        assert c.bandgap_ev() == pytest.approx(0.56, abs=0.02)
        assert c.diameter_nm == pytest.approx(1.52, abs=0.1)

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ValueError):
            chirality_for_gap(0.0)

    @given(st.floats(0.4, 1.0))
    def test_always_within_ten_percent(self, gap):
        c = chirality_for_gap(gap)
        assert abs(c.bandgap_ev() - gap) / gap < 0.1

"""Exact graphene tight binding and CNT zone folding validation."""

import math

import numpy as np
import pytest

from repro.physics.cnt import Chirality
from repro.physics.constants import A_LATTICE_NM, GAMMA0_EV
from repro.physics.graphene import (
    cnt_cutting_line_energies,
    cutting_line_count,
    dirac_points,
    exact_subband_edges_ev,
    graphene_energy_ev,
    translation_period_nm,
)


class TestGrapheneDispersion:
    def test_gamma_point_energy(self):
        # |f(Gamma)| = 3: the band maximum at 3 gamma0.
        assert graphene_energy_ev(0.0, 0.0) == pytest.approx(3.0 * GAMMA0_EV)

    def test_gap_closes_at_dirac_points(self):
        for kx, ky in dirac_points():
            assert graphene_energy_ev(kx, ky) == pytest.approx(0.0, abs=1e-9)

    def test_linear_near_dirac_point(self):
        # E ~ hbar v_F |dk| = (sqrt(3)/2) a gamma0 |dk| near K.
        kx, ky = dirac_points()[0]
        dk = 0.05  # 1/nm, small
        slope_expected = math.sqrt(3.0) / 2.0 * A_LATTICE_NM * GAMMA0_EV
        energy = graphene_energy_ev(kx + dk, ky)
        assert energy == pytest.approx(slope_expected * dk, rel=0.02)

    def test_reciprocal_lattice_periodicity(self):
        # b1 = (2 pi / a) (1/sqrt(3), 1): E(k + b1) = E(k).
        scale = 2.0 * math.pi / A_LATTICE_NM
        b1 = (scale / math.sqrt(3.0), scale)
        k = (0.7, -0.3)
        assert graphene_energy_ev(k[0] + b1[0], k[1] + b1[1]) == pytest.approx(
            graphene_energy_ev(*k), rel=1e-9
        )

    def test_sixfold_value_check(self):
        # M point: |f| = 1 -> E = gamma0.
        scale = 2.0 * math.pi / A_LATTICE_NM
        m_point = (scale / math.sqrt(3.0), 0.0)
        assert graphene_energy_ev(*m_point) == pytest.approx(GAMMA0_EV, rel=1e-9)


class TestFoldingGeometry:
    def test_translation_periods(self):
        # Zigzag: T = sqrt(3) a; armchair: T = a.
        assert translation_period_nm(Chirality(10, 0)) == pytest.approx(
            math.sqrt(3.0) * A_LATTICE_NM, rel=1e-6
        )
        assert translation_period_nm(Chirality(10, 10)) == pytest.approx(
            A_LATTICE_NM, rel=1e-6
        )

    def test_cutting_line_counts(self):
        assert cutting_line_count(Chirality(10, 0)) == 20
        assert cutting_line_count(Chirality(10, 10)) == 20
        assert cutting_line_count(Chirality(15, 7)) == 758

    def test_metallic_line_passes_through_k(self):
        # Armchair tubes: some cutting line reaches E = 0.
        c = Chirality(10, 10)
        k_axis = np.linspace(-math.pi / A_LATTICE_NM, math.pi / A_LATTICE_NM, 4001)
        minima = [
            float(np.min(cnt_cutting_line_energies(c, q, k_axis)))
            for q in range(cutting_line_count(c))
        ]
        assert min(minima) == pytest.approx(0.0, abs=5e-3)


class TestExactEdges:
    def test_chiral_tube_rejected(self):
        with pytest.raises(ValueError):
            exact_subband_edges_ev(Chirality(15, 7))

    def test_count_validation(self):
        with pytest.raises(ValueError):
            exact_subband_edges_ev(Chirality(19, 0), count=0)

    @pytest.mark.parametrize("n", [13, 16, 19, 22])
    def test_zigzag_gap_matches_ladder_within_warping(self, n):
        c = Chirality(n, 0)
        exact = exact_subband_edges_ev(c, count=2)
        ladder = c.subband_edges_ev(1)[0]
        # First edge appears twice (K and K'); trigonal warping keeps the
        # linearised ladder within a few % at these diameters.
        assert exact[0] == pytest.approx(exact[1], rel=1e-6)
        assert exact[0] == pytest.approx(ladder, rel=0.05)

    def test_zigzag_second_edge_near_twice_first(self):
        exact = exact_subband_edges_ev(Chirality(19, 0), count=4)
        first, second = exact[0], exact[2]
        assert second / first == pytest.approx(2.0, rel=0.1)

    def test_armchair_stays_metallic(self):
        exact = exact_subband_edges_ev(Chirality(10, 10), count=1, n_k=2001)
        assert exact[0] == pytest.approx(0.0, abs=5e-3)

    def test_warping_grows_for_small_tubes(self):
        # Trigonal warping correction is larger for small-diameter tubes.
        def warping(n):
            c = Chirality(n, 0)
            exact = exact_subband_edges_ev(c, count=1)[0]
            return abs(exact - c.subband_edges_ev(1)[0]) / exact

        assert warping(7) > warping(19)

"""Shared fixtures: reference devices are expensive, build them once.

Also registers the golden-file harness option: run

    pytest tests/test_golden.py --update-golden

to regenerate the committed snapshots under ``tests/golden/`` after an
intentional output change.
"""

from __future__ import annotations

import pytest

from repro.devices.cntfet import CNTFET
from repro.devices.gnrfet import GNRFET
from repro.devices.tfet import CNTTunnelFET
from repro.physics.cnt import Chirality, chirality_for_gap
from repro.physics.gnr import ArmchairGNR


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ snapshots from the current outputs",
    )


@pytest.fixture(scope="session")
def chirality_056() -> Chirality:
    """The (15,7) tube whose gap matches the paper's 0.56 eV."""
    return chirality_for_gap(0.56)


@pytest.fixture(scope="session")
def ribbon_056() -> ArmchairGNR:
    return ArmchairGNR(18)


@pytest.fixture(scope="session")
def reference_cntfet() -> CNTFET:
    return CNTFET.reference_device()


@pytest.fixture(scope="session")
def reference_gnrfet() -> GNRFET:
    return GNRFET.for_bandgap(0.56)


@pytest.fixture(scope="session")
def reference_tfet(chirality_056) -> CNTTunnelFET:
    return CNTTunnelFET(chirality_056)

"""Self-consistent top-of-barrier solver: convergence, physics, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.physics.cnt import Chirality
from repro.physics.electrostatics import gate_all_around_capacitance
from repro.transport.ballistic import BallisticParameters, TopOfBarrierSolver


@pytest.fixture(scope="module")
def solver():
    chirality = Chirality(15, 7)
    bands = chirality.band_structure(3)
    c_ins = gate_all_around_capacitance(chirality.diameter_nm, 3.0, 16.0)
    return TopOfBarrierSolver(
        bands, BallisticParameters(c_ins_f_per_m=c_ins, ef_offset_ev=-0.3)
    )


class TestParameterValidation:
    def test_rejects_bad_capacitance(self):
        with pytest.raises(ValueError):
            BallisticParameters(c_ins_f_per_m=0.0)

    def test_rejects_bad_alpha_g(self):
        with pytest.raises(ValueError):
            BallisticParameters(c_ins_f_per_m=1e-10, alpha_g=1.5)

    def test_rejects_bad_alpha_d(self):
        with pytest.raises(ValueError):
            BallisticParameters(c_ins_f_per_m=1e-10, alpha_d=-0.1)

    def test_rejects_bad_transmission(self):
        with pytest.raises(ValueError):
            BallisticParameters(c_ins_f_per_m=1e-10, transmission=0.0)


class TestConvergence:
    def test_converges_quickly_at_typical_bias(self, solver):
        op = solver.solve(0.5, 0.5)
        assert op.iterations < 30

    def test_equilibrium_barrier_is_zero(self, solver):
        op = solver.solve(0.0, 0.0)
        assert op.barrier_ev == pytest.approx(0.0, abs=1e-6)
        assert op.current_a == pytest.approx(0.0, abs=1e-15)

    def test_extreme_bias_still_converges(self, solver):
        op = solver.solve(1.5, 1.0)
        assert op.iterations < 150
        assert np.isfinite(op.current_a)


class TestPhysics:
    def test_gate_lowers_barrier(self, solver):
        u0 = solver.solve(0.0, 0.5).barrier_ev
        u1 = solver.solve(0.5, 0.5).barrier_ev
        assert u1 < u0

    def test_charging_feedback_weakens_gate(self, solver):
        # |dU/dVg| < alpha_g once charge builds up (quantum capacitance).
        u1 = solver.solve(0.5, 0.5).barrier_ev
        u2 = solver.solve(0.6, 0.5).barrier_ev
        assert abs(u2 - u1) < solver.params.alpha_g * 0.1

    def test_subthreshold_swing_near_thermal(self, solver):
        # In subthreshold the barrier follows alpha_g * Vg, so SS ~ 60/alpha_g.
        i1 = solver.current(0.05, 0.5)
        i2 = solver.current(0.15, 0.5)
        decades = np.log10(i2 / i1)
        ss_mv = 100.0 / decades
        assert 59.0 < ss_mv < 75.0

    def test_current_saturates_with_vds(self, solver):
        i_knee = solver.current(0.6, 0.3)
        i_high = solver.current(0.6, 0.6)
        assert (i_high - i_knee) / i_high < 0.1

    def test_ohmic_at_low_vds(self, solver):
        i1 = solver.current(0.6, 0.01)
        i2 = solver.current(0.6, 0.02)
        assert i2 == pytest.approx(2 * i1, rel=0.1)

    def test_charge_increases_with_gate(self, solver):
        n1 = solver.solve(0.2, 0.5).charge_per_m
        n2 = solver.solve(0.6, 0.5).charge_per_m
        assert n2 > n1

    def test_transmission_scales_current(self, solver):
        half = solver.with_transmission(0.5)
        # Same barrier physics, half the current (charge unchanged).
        assert half.current(0.6, 0.5) == pytest.approx(
            solver.current(0.6, 0.5) / 2.0, rel=1e-6
        )

    @given(st.floats(0.0, 1.0), st.floats(0.0, 0.8))
    @settings(max_examples=20, deadline=None)
    def test_current_nonnegative_forward(self, solver, vgs, vds):
        assert solver.current(vgs, vds) >= 0.0

    @given(st.floats(0.1, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_monotone_in_gate(self, solver, vgs):
        assert solver.current(vgs + 0.05, 0.5) > solver.current(vgs, 0.5)


class TestIVSurface:
    def test_shape_and_monotonicity(self, solver):
        vgs = np.linspace(0.1, 0.6, 4)
        vds = np.linspace(0.05, 0.5, 3)
        surface = solver.iv_surface(vgs, vds)
        assert surface.shape == (4, 3)
        # increasing along both axes
        assert np.all(np.diff(surface, axis=0) > 0.0)
        assert np.all(np.diff(surface, axis=1) > 0.0)

"""Mean free path and ballisticity models."""

import pytest
from hypothesis import given, strategies as st

from repro.physics.constants import CNT_QUANTUM_RESISTANCE_OHM
from repro.transport.scattering import (
    MeanFreePath,
    OPTICAL_PHONON_ENERGY_EV,
    ballisticity,
    series_channel_resistance_ohm,
)


class TestMeanFreePath:
    def test_reference_values(self):
        mfp = MeanFreePath(diameter_nm=1.5, temperature_k=300.0)
        assert mfp.acoustic_nm == pytest.approx(300.0)
        assert mfp.optical_nm == pytest.approx(15.0)

    def test_diameter_scaling(self):
        thin = MeanFreePath(diameter_nm=0.75)
        assert thin.acoustic_nm == pytest.approx(150.0)

    def test_temperature_scaling_acoustic(self):
        hot = MeanFreePath(temperature_k=600.0)
        assert hot.acoustic_nm == pytest.approx(150.0)

    def test_low_bias_acoustic_limited(self):
        mfp = MeanFreePath()
        assert mfp.effective_nm(bias_v=0.1) == pytest.approx(mfp.acoustic_nm)

    def test_high_bias_optical_dominates(self):
        mfp = MeanFreePath()
        high = mfp.effective_nm(bias_v=0.5)
        assert high < mfp.optical_nm  # Matthiessen combination
        assert high == pytest.approx(
            1.0 / (1.0 / 300.0 + 1.0 / 15.0), rel=1e-6
        )

    def test_threshold_is_optical_phonon_energy(self):
        mfp = MeanFreePath()
        below = mfp.effective_nm(OPTICAL_PHONON_ENERGY_EV - 1e-3)
        above = mfp.effective_nm(OPTICAL_PHONON_ENERGY_EV)
        assert below > above

    def test_validation(self):
        with pytest.raises(ValueError):
            MeanFreePath(diameter_nm=0.0)
        with pytest.raises(ValueError):
            MeanFreePath(temperature_k=-5.0)


class TestBallisticity:
    def test_zero_length_fully_ballistic(self):
        assert ballisticity(0.0, 300.0) == 1.0

    def test_length_equal_mfp_gives_half(self):
        assert ballisticity(300.0, 300.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ballisticity(-1.0, 300.0)
        with pytest.raises(ValueError):
            ballisticity(10.0, 0.0)

    @given(st.floats(0.0, 1e4), st.floats(1.0, 1e3))
    def test_bounded_unit_interval(self, length, mfp):
        t = ballisticity(length, mfp)
        assert 0.0 < t <= 1.0

    @given(st.floats(1.0, 1e3))
    def test_monotone_decreasing_in_length(self, mfp):
        assert ballisticity(10.0, mfp) > ballisticity(100.0, mfp)


class TestLengthScalingResistance:
    def test_short_channel_floor_is_quantum_limit(self):
        r = series_channel_resistance_ohm(0.0, 300.0, CNT_QUANTUM_RESISTANCE_OHM)
        assert r == pytest.approx(CNT_QUANTUM_RESISTANCE_OHM)

    def test_linear_growth_with_length(self):
        r_q = CNT_QUANTUM_RESISTANCE_OHM
        r300 = series_channel_resistance_ohm(300.0, 300.0, r_q)
        assert r300 == pytest.approx(2 * r_q)

    def test_franklin_chen_11k_scale(self):
        # Ref. [16]: ~11 kOhm total series resistance for short devices
        # including imperfect contacts (~quantum floor + extras).
        r = series_channel_resistance_ohm(20.0, 300.0, 10.5e3)
        assert 10e3 < r < 13e3

    def test_validation(self):
        with pytest.raises(ValueError):
            series_channel_resistance_ohm(10.0, 300.0, 0.0)

"""Two-band tunneling: imaginary dispersion, WKB, junction profiles."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.physics.constants import HBAR, Q, VFERMI
from repro.transport.tunneling import (
    JunctionProfile,
    imaginary_dispersion_per_m,
    junction_btbt_transmission,
    wkb_transmission_uniform_field,
)


class TestImaginaryDispersion:
    def test_maximum_at_midgap(self):
        gap = 0.56
        kappa_mid = imaginary_dispersion_per_m(0.0, gap)
        expected = (gap / 2.0) * Q / (HBAR * VFERMI)
        assert kappa_mid == pytest.approx(expected, rel=1e-9)

    def test_vanishes_at_band_edges(self):
        gap = 0.56
        assert imaginary_dispersion_per_m(gap / 2.0, gap) == pytest.approx(0.0)
        assert imaginary_dispersion_per_m(-gap / 2.0, gap) == pytest.approx(0.0)

    def test_zero_outside_gap(self):
        assert imaginary_dispersion_per_m(1.0, 0.56) == 0.0

    def test_symmetric_in_energy(self):
        gap = 0.56
        assert imaginary_dispersion_per_m(0.1, gap) == pytest.approx(
            imaginary_dispersion_per_m(-0.1, gap)
        )

    def test_gap_validation(self):
        with pytest.raises(ValueError):
            imaginary_dispersion_per_m(0.0, -1.0)

    @given(st.floats(0.2, 1.5))
    def test_scale_with_gap(self, gap):
        # kappa_max grows linearly with the gap.
        assert imaginary_dispersion_per_m(0.0, gap) == pytest.approx(
            gap / 2.0 * Q / (HBAR * VFERMI)
        )


class TestUniformFieldWKB:
    def test_analytic_value(self):
        gap, field = 0.56, 2e8
        expected = math.exp(
            -math.pi * (gap * Q) ** 2 / (4 * HBAR * VFERMI * Q * field)
        )
        assert wkb_transmission_uniform_field(gap, field) == pytest.approx(expected)

    def test_stronger_field_more_transmission(self):
        t1 = wkb_transmission_uniform_field(0.56, 1e8)
        t2 = wkb_transmission_uniform_field(0.56, 5e8)
        assert t2 > t1

    def test_larger_gap_less_transmission(self):
        assert wkb_transmission_uniform_field(0.4, 2e8) > wkb_transmission_uniform_field(
            0.8, 2e8
        )

    def test_field_validation(self):
        with pytest.raises(ValueError):
            wkb_transmission_uniform_field(0.56, 0.0)

    @given(st.floats(0.2, 1.2), st.floats(1e7, 1e9))
    @settings(max_examples=40)
    def test_bounded_probability(self, gap, field):
        t = wkb_transmission_uniform_field(gap, field)
        assert 0.0 <= t <= 1.0


class TestJunctionProfile:
    def test_midgap_limits(self):
        profile = JunctionProfile(gap_ev=0.56, delta_ev=-0.8, lambda_nm=3.0)
        assert profile.midgap_ev(-50.0) == pytest.approx(0.0, abs=1e-6)
        assert profile.midgap_ev(50.0) == pytest.approx(-0.8, abs=1e-6)
        assert profile.midgap_ev(0.0) == pytest.approx(-0.4)

    def test_window_closed_before_breakover(self):
        profile = JunctionProfile(gap_ev=0.56, delta_ev=-0.4, lambda_nm=3.0)
        lo, hi = profile.tunnel_window_ev()
        assert lo >= hi

    def test_window_opens_past_gap(self):
        profile = JunctionProfile(gap_ev=0.56, delta_ev=-0.76, lambda_nm=3.0)
        lo, hi = profile.tunnel_window_ev()
        assert hi - lo == pytest.approx(0.2, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            JunctionProfile(gap_ev=0.0, delta_ev=-0.5, lambda_nm=3.0)
        with pytest.raises(ValueError):
            JunctionProfile(gap_ev=0.5, delta_ev=-0.5, lambda_nm=0.0)


class TestJunctionTransmission:
    def test_zero_outside_window(self):
        profile = JunctionProfile(gap_ev=0.56, delta_ev=-0.8, lambda_nm=3.0)
        assert junction_btbt_transmission(profile, 0.5) == 0.0

    def test_positive_inside_window(self):
        profile = JunctionProfile(gap_ev=0.56, delta_ev=-0.9, lambda_nm=3.0)
        lo, hi = profile.tunnel_window_ev()
        mid = (lo + hi) / 2.0
        t = junction_btbt_transmission(profile, mid)
        assert 0.0 < t < 1.0

    def test_sharper_junction_tunnels_more(self):
        sharp = JunctionProfile(gap_ev=0.56, delta_ev=-0.9, lambda_nm=1.5)
        soft = JunctionProfile(gap_ev=0.56, delta_ev=-0.9, lambda_nm=6.0)
        lo, hi = sharp.tunnel_window_ev()
        mid = (lo + hi) / 2.0
        assert junction_btbt_transmission(sharp, mid) > junction_btbt_transmission(
            soft, mid
        )

    def test_vectorised_output(self):
        profile = JunctionProfile(gap_ev=0.56, delta_ev=-0.9, lambda_nm=3.0)
        lo, hi = profile.tunnel_window_ev()
        energies = np.linspace(lo + 1e-3, hi - 1e-3, 7)
        t = junction_btbt_transmission(profile, energies)
        assert t.shape == (7,)
        assert np.all((t >= 0.0) & (t <= 1.0))

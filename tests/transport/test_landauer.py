"""Landauer transport: closed forms, conductance quanta, numeric integral."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.physics.bands import BandStructure1D, Subband
from repro.physics.constants import G0, H, KB, Q
from repro.transport.landauer import (
    ballistic_current,
    numeric_landauer_current,
    quantum_conductance,
    subband_ballistic_current,
)


@pytest.fixture
def cnt_like_bands():
    return BandStructure1D(subbands=(Subband(0.28, 4), Subband(0.56, 4)))


class TestSubbandCurrent:
    def test_zero_bias_zero_current(self):
        assert subband_ballistic_current(0.28, 4, 0.0, 0.0) == pytest.approx(0.0)

    def test_sign_follows_bias(self):
        forward = subband_ballistic_current(0.28, 4, 0.0, -0.5)
        reverse = subband_ballistic_current(0.28, 4, -0.5, 0.0)
        assert forward > 0.0
        assert reverse == pytest.approx(-forward)

    def test_degenerate_limit_magnitude(self):
        # Deep degeneracy, full window: I -> g (q/h) * qV per subband.
        v = 0.2
        current = subband_ballistic_current(
            edge_ev=-2.0, degeneracy=4, mu_source_ev=0.0, mu_drain_ev=-v
        )
        assert current == pytest.approx(4 * Q * Q / H * v, rel=1e-3)

    def test_subthreshold_exponential(self):
        # Barrier far above mu: current scales as exp(-E_b / kT).
        i1 = subband_ballistic_current(0.3, 4, 0.0, -0.5)
        i2 = subband_ballistic_current(0.3 + 0.0595, 4, 0.0, -0.5)
        assert i1 / i2 == pytest.approx(10.0, rel=0.05)

    def test_transmission_scales_linearly(self):
        full = subband_ballistic_current(0.1, 4, 0.0, -0.5, transmission=1.0)
        half = subband_ballistic_current(0.1, 4, 0.0, -0.5, transmission=0.5)
        assert half == pytest.approx(full / 2.0)

    def test_transmission_validation(self):
        with pytest.raises(ValueError):
            subband_ballistic_current(0.1, 4, 0.0, -0.5, transmission=1.5)

    @given(st.floats(-0.2, 0.6), st.floats(0.01, 0.8))
    @settings(max_examples=30)
    def test_current_positive_for_forward_bias(self, edge, vds):
        assert subband_ballistic_current(edge, 4, 0.0, -vds) > 0.0


class TestTotalCurrent:
    def test_sums_over_subbands(self, cnt_like_bands):
        total = ballistic_current(cnt_like_bands, 0.0, 0.3, -0.2)
        parts = sum(
            subband_ballistic_current(b.edge_ev, b.degeneracy, 0.3, -0.2)
            for b in cnt_like_bands.subbands
        )
        assert total == pytest.approx(parts)

    def test_barrier_shift_suppresses(self, cnt_like_bands):
        low = ballistic_current(cnt_like_bands, 0.0, 0.3, -0.2)
        high = ballistic_current(cnt_like_bands, 0.2, 0.3, -0.2)
        assert high < low


class TestQuantumConductance:
    def test_step_heights(self, cnt_like_bands):
        # mu deep in band 1 only: 4 x (q^2/h) = 2 G0; both bands: 4 G0.
        g1 = quantum_conductance(cnt_like_bands, 0.42, temperature_k=1.0)
        g2 = quantum_conductance(cnt_like_bands, 2.0, temperature_k=1.0)
        assert g1 == pytest.approx(2 * G0, rel=1e-6)
        assert g2 == pytest.approx(4 * G0, rel=1e-6)

    def test_thermal_smearing_at_edge(self, cnt_like_bands):
        g = quantum_conductance(cnt_like_bands, 0.28, temperature_k=300.0)
        assert g == pytest.approx(G0, rel=0.01)  # half of the 2 G0 step

    def test_in_gap_small(self, cnt_like_bands):
        assert quantum_conductance(cnt_like_bands, 0.0) < 1e-3 * G0


class TestNumericLandauer:
    def test_matches_closed_form_for_step_transmission(self):
        edge = 0.1
        mu_s, mu_d = 0.2, -0.3

        def transmission(e):
            return np.where(e > edge, 1.0, 0.0)

        numeric = numeric_landauer_current(
            transmission, mu_s, mu_d, -0.8, 1.2, degeneracy=4, n_points=20001
        )
        closed = subband_ballistic_current(edge, 4, mu_s, mu_d)
        assert numeric == pytest.approx(closed, rel=1e-3)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            numeric_landauer_current(lambda e: e * 0 + 1, 0.0, -0.1, 0.5, 0.5)

    def test_negative_transmission_clipped(self):
        current = numeric_landauer_current(
            lambda e: e * 0 - 1.0, 0.0, -0.1, -0.5, 0.5
        )
        assert current == 0.0

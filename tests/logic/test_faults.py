"""Fault injection and functional yield of the one-bit computer."""

import numpy as np
import pytest

from repro.integration.yields import GateYieldModel
from repro.logic.faults import (
    functional_yield,
    machine_with_faults,
    runs_counting_program,
    runs_sorting_program,
    sample_stuck_faults,
)
from repro.logic.gates import build_ripple_subtractor


class TestFaultSampling:
    def test_zero_probability_no_faults(self):
        alu = build_ripple_subtractor(8)
        faults = sample_stuck_faults(alu, 0.0, np.random.default_rng(0))
        assert faults == {}

    def test_certain_failure_faults_everything(self):
        alu = build_ripple_subtractor(4)
        faults = sample_stuck_faults(alu, 1.0, np.random.default_rng(0))
        assert set(faults) == set(alu.gates)

    def test_rate_scales_fault_count(self):
        alu = build_ripple_subtractor(8)
        rng = np.random.default_rng(1)
        few = len(sample_stuck_faults(alu, 0.01, rng))
        many = len(sample_stuck_faults(alu, 0.5, rng))
        assert many > few

    def test_validation(self):
        alu = build_ripple_subtractor(4)
        with pytest.raises(ValueError):
            sample_stuck_faults(alu, 1.5, np.random.default_rng(0))


class TestProgramChecks:
    def test_fault_free_machine_passes_both(self):
        assert runs_counting_program({})
        assert runs_sorting_program({})

    def test_stuck_borrow_breaks_programs(self):
        assert not runs_sorting_program({"borrow": True})

    def test_stuck_data_bit_breaks_counting(self):
        # d0 stuck high: the counter can never reach zero cleanly.
        assert not runs_counting_program({"fs0_d": True})

    def test_machine_with_faults_carries_them(self):
        machine = machine_with_faults(8, {"borrow": True})
        assert machine.faults == {"borrow": True}
        assert machine.use_gate_level


class TestFunctionalYield:
    def test_perfect_gates_full_yield(self):
        model = GateYieldModel(semiconducting_purity=1.0, removal_efficiency=1.0,
                               tube_survival=1.0, tubes_per_gate=10.0)
        result = functional_yield(model, n_trials=20, seed=0)
        assert result.functional_yield == 1.0

    def test_awful_gates_zero_yield(self):
        model = GateYieldModel(
            semiconducting_purity=0.5, removal_efficiency=0.0, tubes_per_gate=10.0
        )
        result = functional_yield(model, n_trials=20, seed=0)
        assert result.functional_yield < 0.2

    def test_yield_monotone_in_purity(self):
        def run(purity):
            model = GateYieldModel(
                semiconducting_purity=purity,
                removal_efficiency=0.9,
                tubes_per_gate=5.0,
            )
            return functional_yield(model, n_trials=60, seed=42).functional_yield

        assert run(0.999) >= run(0.9)

    def test_reports_gate_failure_probability(self):
        model = GateYieldModel(semiconducting_purity=0.99, removal_efficiency=0.9)
        result = functional_yield(model, n_trials=5, seed=1)
        assert result.gate_failure_probability == pytest.approx(
            1.0 - model.gate_yield
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            functional_yield(GateYieldModel(), n_trials=0)


class TestFunctionalYieldDeterminism:
    """Engine satellite: execution shape never changes the yield estimate."""

    def test_chunking_and_pool_match_serial(self):
        model = GateYieldModel(
            semiconducting_purity=0.99, removal_efficiency=0.9, tubes_per_gate=5.0
        )
        serial = functional_yield(model, n_trials=48, seed=7)
        chunked = functional_yield(model, n_trials=48, seed=7, chunk_size=32)
        pooled = functional_yield(model, n_trials=48, seed=7, workers=2)
        assert serial == chunked == pooled

"""Technology mapping: device -> gate delay -> computer clock."""

import pytest

from repro.devices.cntfet import CNTFET
from repro.devices.contacts import SeriesResistanceFET
from repro.logic.gates import build_ripple_subtractor
from repro.logic.technology import LogicTechnology, subneg_cycle_estimate


@pytest.fixture(scope="module")
def scaled_cnt_technology(reference_cntfet):
    return LogicTechnology(
        device=reference_cntfet,
        load_capacitance_f=0.1e-15,
        vdd=0.6,
        name="scaled GAA CNT",
    )


class TestLogicTechnology:
    def test_validation(self, reference_cntfet):
        with pytest.raises(ValueError):
            LogicTechnology(reference_cntfet, load_capacitance_f=0.0, vdd=1.0)
        with pytest.raises(ValueError):
            LogicTechnology(reference_cntfet, load_capacitance_f=1e-15, vdd=-1.0)

    def test_inverter_delay_cv_over_i(self, scaled_cnt_technology, reference_cntfet):
        expected = 0.1e-15 * 0.6 / reference_cntfet.current(0.6, 0.6)
        assert scaled_cnt_technology.inverter_delay_s == pytest.approx(expected)

    def test_heavier_load_slower(self, reference_cntfet):
        light = LogicTechnology(reference_cntfet, 0.1e-15, 0.6)
        heavy = LogicTechnology(reference_cntfet, 10e-15, 0.6)
        assert heavy.inverter_delay_s > light.inverter_delay_s

    def test_critical_path_scales_with_netlist(self, scaled_cnt_technology):
        small = build_ripple_subtractor(4)
        large = build_ripple_subtractor(16)
        assert scaled_cnt_technology.critical_path_s(
            large
        ) > scaled_cnt_technology.critical_path_s(small)

    def test_margin_validation(self, scaled_cnt_technology):
        with pytest.raises(ValueError):
            scaled_cnt_technology.max_clock_hz(build_ripple_subtractor(4), margin=0.5)

    def test_energy_activity_validation(self, scaled_cnt_technology):
        with pytest.raises(ValueError):
            scaled_cnt_technology.energy_per_cycle_j(
                build_ripple_subtractor(4), activity=0.0
            )


class TestSubnegCycle:
    def test_scaled_cnt_reaches_ghz(self, scaled_cnt_technology):
        estimate = subneg_cycle_estimate(scaled_cnt_technology, word_bits=8)
        assert estimate.clock_hz > 1e9

    def test_shulaker_era_lands_in_khz_regime(self, reference_cntfet):
        # Back-gated CNFETs through ~100 kOhm effective contacts driving
        # pF-scale pass-gate/wiring loads at 3 V: the 2013 CNT computer
        # ran its demonstration at ~1 kHz.
        legacy_device = SeriesResistanceFET(reference_cntfet, 50e3, 50e3)
        legacy = LogicTechnology(
            device=legacy_device,
            load_capacitance_f=50e-12,
            vdd=3.0,
            name="2013 back-gated CNT",
        )
        estimate = subneg_cycle_estimate(legacy, word_bits=1)
        assert 1e2 < estimate.clock_hz < 1e6

    def test_wider_word_slower(self, scaled_cnt_technology):
        narrow = subneg_cycle_estimate(scaled_cnt_technology, word_bits=4)
        wide = subneg_cycle_estimate(scaled_cnt_technology, word_bits=16)
        assert wide.clock_hz < narrow.clock_hz
        assert wide.energy_per_cycle_j > narrow.energy_per_cycle_j

    def test_estimate_fields_consistent(self, scaled_cnt_technology):
        estimate = subneg_cycle_estimate(scaled_cnt_technology, word_bits=8, margin=2.0)
        assert estimate.clock_hz == pytest.approx(1.0 / (2.0 * estimate.critical_path_s))
        assert estimate.technology_name == "scaled GAA CNT"

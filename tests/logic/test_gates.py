"""Gate-level netlists: evaluation, arithmetic cells, timing."""

import itertools

import pytest

from repro.logic.gates import (
    GATE_FUNCTIONS,
    Gate,
    LogicNetlist,
    build_full_subtractor,
    build_ripple_subtractor,
)


class TestGate:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Gate(output="x", kind="mux", inputs=("a", "b"))

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Gate(output="x", kind="not", inputs=("a", "b"))
        with pytest.raises(ValueError):
            Gate(output="x", kind="nand", inputs=("a",))


class TestNetlistEvaluation:
    def test_truth_tables(self):
        for kind in ("and", "or", "nand", "nor", "xor", "xnor"):
            netlist = LogicNetlist()
            netlist.add_input("a")
            netlist.add_input("b")
            netlist.add_gate("y", kind, "a", "b")
            netlist.mark_output("y")
            for a, b in itertools.product([False, True], repeat=2):
                got = netlist.outputs({"a": a, "b": b})["y"]
                assert got == GATE_FUNCTIONS[kind](a, b)

    def test_redefinition_rejected(self):
        netlist = LogicNetlist()
        netlist.add_input("a")
        with pytest.raises(ValueError):
            netlist.add_input("a")
        netlist.add_gate("y", "not", "a")
        with pytest.raises(ValueError):
            netlist.add_gate("y", "buf", "a")

    def test_missing_inputs_detected(self):
        netlist = LogicNetlist()
        netlist.add_input("a")
        netlist.add_gate("y", "not", "a")
        with pytest.raises(ValueError):
            netlist.evaluate({})

    def test_unknown_output_mark(self):
        with pytest.raises(ValueError):
            LogicNetlist().mark_output("ghost")

    def test_deep_chain(self):
        netlist = LogicNetlist()
        netlist.add_input("a")
        previous = "a"
        for i in range(10):
            previous = netlist.add_gate(f"n{i}", "not", previous)
        netlist.mark_output(previous)
        assert netlist.outputs({"a": True})[previous] is True  # even inversions

    def test_fault_overrides_gate(self):
        netlist = LogicNetlist()
        netlist.add_input("a")
        netlist.add_gate("y", "not", "a")
        netlist.mark_output("y")
        assert netlist.outputs({"a": True}, faults={"y": True})["y"] is True

    def test_fault_on_primary_input(self):
        netlist = LogicNetlist()
        netlist.add_input("a")
        netlist.add_gate("y", "buf", "a")
        netlist.mark_output("y")
        assert netlist.outputs({"a": False}, faults={"a": True})["y"] is True


class TestArithmeticCells:
    def test_full_subtractor_truth_table(self):
        for a, b, borrow_in in itertools.product([0, 1], repeat=3):
            netlist = LogicNetlist()
            for net in ("a", "b", "bin"):
                netlist.add_input(net)
            diff, bout = build_full_subtractor(netlist, "a", "b", "bin", "fs")
            netlist.mark_output(diff)
            netlist.mark_output(bout)
            out = netlist.outputs(
                {"a": bool(a), "b": bool(b), "bin": bool(borrow_in)}
            )
            raw = a - b - borrow_in
            assert out[diff] == bool(raw & 1)
            assert out[bout] == (raw < 0)

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_ripple_subtractor_exhaustive_small(self, bits):
        netlist = build_ripple_subtractor(min(bits, 4))
        n = min(bits, 4)
        for a, b in itertools.product(range(2**n), repeat=2):
            inputs = {"bin0": False}
            for i in range(n):
                inputs[f"a{i}"] = bool((a >> i) & 1)
                inputs[f"b{i}"] = bool((b >> i) & 1)
            out = netlist.outputs(inputs)
            result = sum(out[f"d{i}"] << i for i in range(n))
            assert result == (a - b) % (2**n)
            assert out["borrow"] == (a < b)

    def test_bit_width_validation(self):
        with pytest.raises(ValueError):
            build_ripple_subtractor(0)


class TestMetrics:
    def test_gate_and_transistor_counts(self):
        netlist = build_ripple_subtractor(8)
        assert netlist.gate_count > 8 * 7  # seven gates per full subtractor
        # CMOS: inverter 2T, 2-input gate 4T.
        assert netlist.transistor_count() > 2 * netlist.gate_count

    def test_critical_path_grows_with_width(self):
        d4 = build_ripple_subtractor(4).critical_path_units()
        d8 = build_ripple_subtractor(8).critical_path_units()
        assert d8 > d4

    def test_critical_path_delay_scaling(self):
        netlist = build_ripple_subtractor(4)
        assert netlist.critical_path_delay_s(10e-12) == pytest.approx(
            netlist.critical_path_units() * 10e-12
        )
        with pytest.raises(ValueError):
            netlist.critical_path_delay_s(0.0)

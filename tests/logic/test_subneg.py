"""SUBNEG machine: semantics, programs, gate-level equivalence."""

import pytest

from repro.logic.subneg import (
    Instruction,
    SubnegMachine,
    assemble,
    counting_program,
    sort_with_machine,
    sorting_program,
)


class TestMachineBasics:
    def test_word_width_validation(self):
        with pytest.raises(ValueError):
            SubnegMachine(memory=[0] * 8, word_bits=1)

    def test_memory_defensively_copied(self):
        memory = [3, 4, -1, 1, 2, 0]
        machine = SubnegMachine(memory=[5, 5, -1, 7, 3, 0])
        original = list(memory)
        SubnegMachine(memory=memory)
        assert memory == original

    def test_single_subtract_halts(self):
        # mem[4] -= mem[3]: 3 - 5 < 0 -> branch to -1 (halt).
        machine = SubnegMachine(memory=[3, 4, -1, 5, 3, 0])
        steps = machine.run()
        assert steps == 1
        assert machine.memory[4] == (3 - 5) % (1 << 16)

    def test_branch_not_taken_falls_through(self):
        # First: mem[7] -= mem[6] = 9 - 1 > 0: fall through to halt-trick.
        memory = [6, 7, -1, 8, 8, -1, 1, 10, 0]
        machine = SubnegMachine(memory=memory)
        machine.run()
        assert machine.memory[7] == 9

    def test_runaway_detection(self):
        # Infinite loop: subtracting zero always branches back to 0.
        memory = [3, 3, 0, 0]
        with pytest.raises(RuntimeError):
            SubnegMachine(memory=memory, max_steps=100).run()

    def test_pc_out_of_bounds(self):
        machine = SubnegMachine(memory=[0, 1, 100, 0])
        with pytest.raises(IndexError):
            machine.run(100)


class TestCountingProgram:
    @pytest.mark.parametrize("count", [1, 3, 10, 25])
    def test_counts_to_zero(self, count):
        memory, counter = counting_program(count)
        machine = SubnegMachine(memory=memory)
        steps = machine.run()
        assert machine.memory[counter] == 0
        assert steps == 2 * count - 1  # subtract + goto per loop, final halt

    def test_validation(self):
        with pytest.raises(ValueError):
            counting_program(0)

    def test_gate_level_agrees_with_behavioural(self):
        memory, counter = counting_program(6)
        behavioural = SubnegMachine(memory=memory)
        gate_level = SubnegMachine(memory=memory, word_bits=8, use_gate_level=True)
        behavioural.run()
        gate_level.run()
        assert behavioural.memory[counter] == gate_level.memory[counter] == 0


class TestSortingProgram:
    def test_sorts(self):
        assert sorting_program([5, 2, 9, 1, 3]) == [1, 2, 3, 5, 9]

    def test_already_sorted(self):
        assert sorting_program([1, 2, 3]) == [1, 2, 3]

    def test_duplicates(self):
        assert sorting_program([4, 4, 1, 1]) == [1, 1, 4, 4]

    def test_gate_level_machine_sorts(self):
        machine = SubnegMachine(memory=[0] * 8, word_bits=8, use_gate_level=True)
        assert sort_with_machine([7, 3, 5, 1], machine) == [1, 3, 5, 7]

    def test_faulty_machine_missorts(self):
        # Stuck borrow flips every comparison: the sort visibly breaks.
        machine = SubnegMachine(
            memory=[0] * 8, word_bits=8, use_gate_level=True,
            faults={"borrow": True},
        )
        assert sort_with_machine([3, 1, 2], machine) != [1, 2, 3]


class TestGateLevelArithmetic:
    @pytest.mark.parametrize(
        "minuend,subtrahend",
        [(0, 0), (1, 1), (10, 3), (3, 10), (255, 1), (0, 255), (128, 128)],
    )
    def test_matches_modular_arithmetic(self, minuend, subtrahend):
        machine = SubnegMachine(memory=[0] * 4, word_bits=8, use_gate_level=True)
        result, negative = machine._subtract(minuend, subtrahend)
        assert result == (minuend - subtrahend) % 256
        assert negative == (minuend - subtrahend <= 0)


class TestAssemble:
    def test_builds_instructions(self):
        program = assemble([(1, 2, 3), (4, 5, -1)])
        assert program[0] == Instruction(1, 2, 3)
        assert program[1].c == -1

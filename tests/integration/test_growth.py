"""Growth populations: the 2/3 semiconducting rule and diameter statistics."""

import numpy as np
import pytest

from repro.integration.growth import GrowthDistribution


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            GrowthDistribution(mean_diameter_nm=0.0)
        with pytest.raises(ValueError):
            GrowthDistribution(sigma_diameter_nm=-0.1)
        with pytest.raises(ValueError):
            GrowthDistribution(diameter_window_nm=(2.0, 1.0))

    def test_probabilities_normalised(self):
        dist = GrowthDistribution()
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_chirality_list_not_aliased(self):
        dist = GrowthDistribution()
        listing = dist.chiralities
        listing.clear()
        assert dist.chiralities  # internal state untouched


class TestSemiconductingFraction:
    def test_near_two_thirds(self):
        # The paper's "CNTs can come in different flavors": as-grown
        # populations are ~1/3 metallic.
        fraction = GrowthDistribution().semiconducting_fraction()
        assert fraction == pytest.approx(2.0 / 3.0, abs=0.05)

    def test_robust_to_recipe(self):
        small = GrowthDistribution(mean_diameter_nm=1.0, sigma_diameter_nm=0.15)
        assert small.semiconducting_fraction() == pytest.approx(2.0 / 3.0, abs=0.08)


class TestMeanGap:
    def test_tracks_diameter(self):
        thin = GrowthDistribution(mean_diameter_nm=1.0, sigma_diameter_nm=0.1)
        thick = GrowthDistribution(mean_diameter_nm=2.0, sigma_diameter_nm=0.1)
        assert thin.mean_bandgap_ev() > thick.mean_bandgap_ev()

    def test_15nm_recipe_near_056(self):
        gap = GrowthDistribution(mean_diameter_nm=1.52, sigma_diameter_nm=0.1).mean_bandgap_ev()
        assert gap == pytest.approx(0.56, abs=0.06)


class TestSampling:
    def test_sample_size_and_window(self):
        dist = GrowthDistribution()
        rng = np.random.default_rng(42)
        tubes = dist.sample(500, rng)
        assert len(tubes) == 500
        lo, hi = dist.diameter_window_nm
        assert all(lo <= t.diameter_nm <= hi for t in tubes)

    def test_sample_mean_diameter(self):
        dist = GrowthDistribution(mean_diameter_nm=1.5, sigma_diameter_nm=0.2)
        rng = np.random.default_rng(7)
        diameters = dist.sample_diameters_nm(4000, rng)
        assert diameters.mean() == pytest.approx(1.5, abs=0.05)

    def test_sampled_semiconducting_share(self):
        dist = GrowthDistribution()
        rng = np.random.default_rng(3)
        tubes = dist.sample(3000, rng)
        share = sum(t.is_semiconducting for t in tubes) / len(tubes)
        assert share == pytest.approx(dist.semiconducting_fraction(), abs=0.03)

    def test_reproducible_with_seed(self):
        dist = GrowthDistribution()
        a = dist.sample_diameters_nm(50, np.random.default_rng(5))
        b = dist.sample_diameters_nm(50, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            GrowthDistribution().sample(0)

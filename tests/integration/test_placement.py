"""Placement models: Poisson site statistics, alignment, trench filling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.integration.placement import (
    AlignedGrowth,
    PlacementStatistics,
    TrenchDeposition,
)


class TestPlacementStatistics:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            PlacementStatistics(p_empty=1.2, p_single=0.0, p_multiple=0.0, p_misaligned=0.0)

    def test_usable_fraction(self):
        stats = PlacementStatistics(
            p_empty=0.1, p_single=0.5, p_multiple=0.4, p_misaligned=0.1
        )
        assert stats.p_usable == pytest.approx(0.9 * 0.9)


class TestAlignedGrowth:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlignedGrowth(density_per_um=0.0)
        with pytest.raises(ValueError):
            AlignedGrowth(angular_sigma_deg=-1.0)

    def test_expected_tubes_linear_in_width(self):
        growth = AlignedGrowth(density_per_um=5.0)
        assert growth.expected_tubes(2.0) == pytest.approx(10.0)

    def test_misaligned_fraction_small_for_tight_sigma(self):
        tight = AlignedGrowth(angular_sigma_deg=1.0, misalignment_threshold_deg=5.0)
        # 5 sigma two-sided: ~6e-7.
        assert tight.misaligned_fraction() < 1e-5

    def test_misaligned_fraction_grows_with_sigma(self):
        loose = AlignedGrowth(angular_sigma_deg=5.0, misalignment_threshold_deg=5.0)
        tight = AlignedGrowth(angular_sigma_deg=1.0, misalignment_threshold_deg=5.0)
        assert loose.misaligned_fraction() > tight.misaligned_fraction()

    def test_poisson_statistics(self):
        growth = AlignedGrowth(density_per_um=2.0)
        stats = growth.statistics(device_width_um=1.0)
        assert stats.p_empty == pytest.approx(math.exp(-2.0))
        assert stats.p_single == pytest.approx(2.0 * math.exp(-2.0))
        assert stats.p_empty + stats.p_single + stats.p_multiple == pytest.approx(1.0)

    def test_sampled_counts_match_mean(self):
        growth = AlignedGrowth(density_per_um=5.0)
        counts = growth.sample_tube_counts(1.0, 5000, np.random.default_rng(1))
        assert counts.mean() == pytest.approx(5.0, abs=0.2)

    @given(st.floats(0.5, 10.0), st.floats(0.1, 3.0))
    @settings(max_examples=25)
    def test_statistics_are_probabilities(self, density, width):
        stats = AlignedGrowth(density_per_um=density).statistics(width)
        for p in (stats.p_empty, stats.p_single, stats.p_multiple, stats.p_misaligned):
            assert 0.0 <= p <= 1.0


class TestTrenchDeposition:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrenchDeposition(mean_tubes_per_site=0.0)
        with pytest.raises(ValueError):
            TrenchDeposition(misplacement_probability=1.0)

    def test_fill_fraction_formula(self):
        trench = TrenchDeposition(mean_tubes_per_site=2.5)
        assert trench.fill_fraction() == pytest.approx(1.0 - math.exp(-2.5))

    def test_park_regime_over_90_percent(self):
        # Park et al. reached >90 % filled sites; mu = 2.5 gives ~92 %.
        assert TrenchDeposition(mean_tubes_per_site=2.5).fill_fraction() > 0.9

    def test_concentration_inverts_fill(self):
        trench = TrenchDeposition()
        mu = trench.concentration_for_fill(0.95)
        assert 1.0 - math.exp(-mu) == pytest.approx(0.95)

    def test_concentration_validation(self):
        with pytest.raises(ValueError):
            TrenchDeposition().concentration_for_fill(1.0)

    def test_statistics_consistent(self):
        trench = TrenchDeposition(mean_tubes_per_site=1.0, misplacement_probability=0.02)
        stats = trench.statistics()
        assert stats.p_empty == pytest.approx(math.exp(-1.0))
        assert stats.p_misaligned == 0.02

    def test_sampling(self):
        counts = TrenchDeposition(mean_tubes_per_site=2.5).sample_tube_counts(
            10000, np.random.default_rng(2)
        )
        filled = (counts > 0).mean()
        assert filled == pytest.approx(1.0 - math.exp(-2.5), abs=0.02)

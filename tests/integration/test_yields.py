"""Circuit yield: metallic shorts, VMR removal, the Shulaker scenario."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.integration.yields import (
    GateYieldModel,
    SHULAKER_TRANSISTOR_COUNT,
    circuit_yield,
    monte_carlo_gate_yield,
    purity_required_for_yield,
    shulaker_computer_yield,
)


class TestGateYieldModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            GateYieldModel(semiconducting_purity=1.5)
        with pytest.raises(ValueError):
            GateYieldModel(tubes_per_gate=0.0)

    def test_perfect_purity_no_shorts(self):
        model = GateYieldModel(semiconducting_purity=1.0, removal_efficiency=0.0)
        assert model.p_short == 0.0

    def test_perfect_removal_no_shorts(self):
        model = GateYieldModel(semiconducting_purity=0.5, removal_efficiency=1.0)
        assert model.p_short == 0.0

    def test_short_probability_formula(self):
        model = GateYieldModel(
            semiconducting_purity=0.9, tubes_per_gate=5.0, removal_efficiency=0.0
        )
        assert model.p_short == pytest.approx(1.0 - math.exp(-0.5))

    def test_open_probability(self):
        model = GateYieldModel(
            semiconducting_purity=0.99, tubes_per_gate=5.0, tube_survival=1.0
        )
        assert model.p_open == pytest.approx(math.exp(-4.95))

    def test_gate_yield_composition(self):
        model = GateYieldModel()
        assert model.gate_yield == pytest.approx(
            (1.0 - model.p_short) * (1.0 - model.p_open)
        )

    @given(st.floats(0.5, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=40)
    def test_probabilities_bounded(self, purity, removal):
        model = GateYieldModel(
            semiconducting_purity=purity, removal_efficiency=removal
        )
        assert 0.0 <= model.p_short <= 1.0
        assert 0.0 <= model.p_open <= 1.0
        assert 0.0 <= model.gate_yield <= 1.0


class TestCircuitYield:
    def test_yield_decays_with_gate_count(self):
        model = GateYieldModel(semiconducting_purity=0.999, removal_efficiency=0.0)
        small = circuit_yield(model, 10).circuit_yield
        large = circuit_yield(model, 1000).circuit_yield
        assert large < small

    def test_redundancy_helps(self):
        model = GateYieldModel(semiconducting_purity=0.99, removal_efficiency=0.0)
        plain = circuit_yield(model, 178).circuit_yield
        spared = circuit_yield(model, 178, redundancy=3).circuit_yield
        assert spared > plain

    def test_expected_failures(self):
        model = GateYieldModel(semiconducting_purity=0.999, removal_efficiency=0.0)
        result = circuit_yield(model, 100)
        assert result.expected_failures == pytest.approx(
            100 * (1.0 - result.gate_yield)
        )

    def test_validation(self):
        model = GateYieldModel()
        with pytest.raises(ValueError):
            circuit_yield(model, 0)
        with pytest.raises(ValueError):
            circuit_yield(model, 10, redundancy=0)


class TestShulakerScenario:
    def test_transistor_count(self):
        assert SHULAKER_TRANSISTOR_COUNT == 178

    def test_raw_growth_purity_hopeless_without_removal(self):
        # 2/3 semiconducting, no metallic removal: yield ~ 0.
        result = shulaker_computer_yield(2.0 / 3.0, removal_efficiency=0.0)
        assert result.circuit_yield < 1e-6

    def test_removal_rescues_raw_material(self):
        # The imperfection-immune flow: VMR makes 2/3 purity workable.
        result = shulaker_computer_yield(2.0 / 3.0, removal_efficiency=0.9999)
        assert result.circuit_yield > 0.5

    def test_sorted_material_with_removal_high_yield(self):
        result = shulaker_computer_yield(0.9999, removal_efficiency=0.999)
        assert result.circuit_yield > 0.9

    def test_monotone_in_purity(self):
        yields = [
            shulaker_computer_yield(p, removal_efficiency=0.99).circuit_yield
            for p in (0.9, 0.99, 0.999, 0.9999)
        ]
        assert all(a < b for a, b in zip(yields, yields[1:]))


class TestPurityRequirement:
    def test_inverts_yield_formula(self):
        purity = purity_required_for_yield(0.5, n_gates=178, tubes_per_gate=5.0)
        model = GateYieldModel(
            semiconducting_purity=purity,
            tubes_per_gate=5.0,
            removal_efficiency=0.0,
            tube_survival=1.0,
        )
        # Shorts-only yield should land on the target.
        shorts_only = (1.0 - model.p_short) ** 178
        assert shorts_only == pytest.approx(0.5, rel=0.01)

    def test_vlsi_scale_needs_many_nines(self):
        # A million-gate circuit: purity must exceed six nines without
        # removal — the paper's "hard work" in numbers.
        purity = purity_required_for_yield(0.5, n_gates=1_000_000, tubes_per_gate=5.0)
        assert purity > 1.0 - 1e-6

    def test_removal_relaxes_requirement(self):
        strict = purity_required_for_yield(0.5, 178, removal_efficiency=0.0)
        relaxed = purity_required_for_yield(0.5, 178, removal_efficiency=0.99)
        assert relaxed < strict

    def test_validation(self):
        with pytest.raises(ValueError):
            purity_required_for_yield(1.5, 100)
        with pytest.raises(ValueError):
            purity_required_for_yield(0.5, 0)


class TestMonteCarloGateYield:
    """Sampled gate fabrication converges on the analytic thinning model."""

    @pytest.fixture(scope="class")
    def model(self):
        return GateYieldModel(
            semiconducting_purity=0.99, tubes_per_gate=5.0,
            removal_efficiency=0.9, tube_survival=0.95,
        )

    @pytest.fixture(scope="class")
    def sampled(self, model):
        return monte_carlo_gate_yield(model, n_gates=20000, seed=3)

    def test_matches_analytic_probabilities(self, model, sampled):
        assert sampled.p_short == pytest.approx(model.p_short, abs=0.005)
        assert sampled.p_open == pytest.approx(model.p_open, abs=0.005)
        assert sampled.gate_yield == pytest.approx(model.gate_yield, abs=0.01)

    def test_counts_are_consistent(self, sampled):
        assert sampled.n_functional <= sampled.n_gates
        assert sampled.n_functional >= sampled.n_gates - sampled.n_shorted - sampled.n_open

    def test_execution_shape_invariance(self, model, sampled):
        chunked = monte_carlo_gate_yield(model, n_gates=20000, seed=3, chunk_size=777)
        pooled = monte_carlo_gate_yield(model, n_gates=20000, seed=3, workers=2)
        assert chunked == sampled
        assert pooled == sampled

    def test_validation(self, model):
        with pytest.raises(ValueError):
            monte_carlo_gate_yield(model, n_gates=0)

"""Separation processes: purity evolution and the purity/yield trade-off."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.integration.sorting import (
    DENSITY_GRADIENT,
    DNA_SORTING,
    GEL_CHROMATOGRAPHY,
    SeparationProcess,
    passes_to_reach_purity,
)


class TestProcessValidation:
    def test_selectivity_must_exceed_one(self):
        with pytest.raises(ValueError):
            SeparationProcess("bad", selectivity=1.0, retain_semiconducting=0.8)

    def test_retention_bounds(self):
        with pytest.raises(ValueError):
            SeparationProcess("bad", selectivity=10.0, retain_semiconducting=0.0)

    def test_purity_bounds(self):
        with pytest.raises(ValueError):
            GEL_CHROMATOGRAPHY.purity_after_pass(1.5)


class TestSinglePass:
    def test_purity_increases(self):
        assert GEL_CHROMATOGRAPHY.purity_after_pass(2 / 3) > 2 / 3

    def test_selectivity_formula(self):
        proc = SeparationProcess("x", selectivity=9.0, retain_semiconducting=0.9)
        # p=0.5: p' = 0.9*0.5 / (0.9*0.5 + 0.1*0.5) = 0.9.
        assert proc.purity_after_pass(0.5) == pytest.approx(0.9)

    def test_pure_input_stays_pure(self):
        assert GEL_CHROMATOGRAPHY.purity_after_pass(1.0) == pytest.approx(1.0)

    def test_yield_less_than_one(self):
        y = GEL_CHROMATOGRAPHY.yield_of_pass(2 / 3)
        assert 0.0 < y < 1.0

    @given(st.floats(0.01, 0.999))
    @settings(max_examples=40)
    def test_purity_monotone_improvement(self, purity):
        for proc in (GEL_CHROMATOGRAPHY, DENSITY_GRADIENT, DNA_SORTING):
            assert proc.purity_after_pass(purity) >= purity

    @given(st.floats(0.01, 0.999))
    @settings(max_examples=40)
    def test_output_is_probability(self, purity):
        out = DNA_SORTING.purity_after_pass(purity)
        assert 0.0 <= out <= 1.0


class TestMultiPass:
    def test_run_tracks_history(self):
        result = GEL_CHROMATOGRAPHY.run(2 / 3, 3)
        assert result.n_passes == 3
        assert len(result.purity_history) == 4
        assert result.purity == result.purity_history[-1]

    def test_yield_compounds(self):
        one = GEL_CHROMATOGRAPHY.run(2 / 3, 1).cumulative_yield
        three = GEL_CHROMATOGRAPHY.run(2 / 3, 3).cumulative_yield
        assert three < one

    def test_zero_passes_identity(self):
        result = GEL_CHROMATOGRAPHY.run(0.5, 0)
        assert result.purity == 0.5
        assert result.cumulative_yield == 1.0

    def test_negative_passes_rejected(self):
        with pytest.raises(ValueError):
            GEL_CHROMATOGRAPHY.run(0.5, -1)

    def test_nines_metric(self):
        import math

        result = GEL_CHROMATOGRAPHY.run(2 / 3, 4)
        assert result.nines() == pytest.approx(-math.log10(1.0 - result.purity))
        assert result.nines() == pytest.approx(-math.log10(result.metallic_fraction))


class TestPassesToPurity:
    def test_reaches_target(self):
        result = passes_to_reach_purity(GEL_CHROMATOGRAPHY, 0.9999)
        assert result.purity >= 0.9999
        assert result.n_passes >= 1

    def test_higher_selectivity_needs_fewer_passes(self):
        gel = passes_to_reach_purity(GEL_CHROMATOGRAPHY, 0.9999).n_passes
        gradient = passes_to_reach_purity(DENSITY_GRADIENT, 0.9999).n_passes
        assert gel <= gradient

    def test_dna_reaches_six_nines(self):
        result = passes_to_reach_purity(DNA_SORTING, 1.0 - 1e-6)
        assert result.purity >= 1.0 - 1e-6
        # ... at a painful material cost (the paper's integration gap).
        assert result.cumulative_yield < 0.5

    def test_unreachable_raises(self):
        weak = SeparationProcess("weak", selectivity=1.01, retain_semiconducting=0.9)
        with pytest.raises(ValueError):
            passes_to_reach_purity(weak, 1.0 - 1e-9, max_passes=3)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            passes_to_reach_purity(GEL_CHROMATOGRAPHY, 1.5)

"""CNFET array Monte Carlo: the 10,000-device statistics of Ref. [22]."""

import numpy as np
import pytest

from repro.integration.variability import (
    ArrayResult,
    ArraySpec,
    CNFETArrayModel,
    DeviceSample,
)


class TestDeviceSample:
    def test_flags(self):
        empty = DeviceSample(n_tubes=0, n_metallic=0, i_on_a=0.0, i_off_a=0.0)
        assert empty.is_open and not empty.is_shorted
        shorted = DeviceSample(n_tubes=3, n_metallic=1, i_on_a=1e-5, i_off_a=5e-5)
        assert shorted.is_shorted

    def test_ratio_handles_zero_off(self):
        device = DeviceSample(n_tubes=1, n_metallic=0, i_on_a=1e-5, i_off_a=0.0)
        assert device.on_off_ratio == np.inf


class TestModelValidation:
    def test_purity_bounds(self):
        with pytest.raises(ValueError):
            CNFETArrayModel(semiconducting_purity=1.2)

    def test_positive_scales(self):
        with pytest.raises(ValueError):
            CNFETArrayModel(mean_tubes_per_device=0.0)
        with pytest.raises(ValueError):
            CNFETArrayModel(mean_on_current_per_tube_a=-1.0)


class TestArrayStatistics:
    @pytest.fixture(scope="class")
    def clean_array(self):
        return CNFETArrayModel(
            semiconducting_purity=0.9999, mean_tubes_per_device=3.0
        ).sample_array(5000, seed=11)

    @pytest.fixture(scope="class")
    def dirty_array(self):
        return CNFETArrayModel(
            semiconducting_purity=0.90, mean_tubes_per_device=3.0
        ).sample_array(5000, seed=11)

    def test_reproducible_with_seed(self):
        model = CNFETArrayModel()
        a = model.sample_array(200, seed=3)
        b = model.sample_array(200, seed=3)
        assert a.on_currents_a() == pytest.approx(b.on_currents_a())

    def test_open_fraction_poisson(self, clean_array):
        assert clean_array.open_fraction == pytest.approx(np.exp(-3.0), abs=0.02)

    def test_purity_drives_shorts(self, clean_array, dirty_array):
        assert dirty_array.shorted_fraction > 10 * clean_array.shorted_fraction

    def test_pass_fraction_ordering(self, clean_array, dirty_array):
        assert clean_array.pass_fraction > dirty_array.pass_fraction

    def test_on_current_scales_with_tubes(self):
        few = CNFETArrayModel(mean_tubes_per_device=1.5).sample_array(3000, seed=5)
        many = CNFETArrayModel(mean_tubes_per_device=6.0).sample_array(3000, seed=5)
        assert many.on_currents_a().mean() > 2.0 * few.on_currents_a().mean()

    def test_metallic_tube_kills_on_off(self):
        dirty = CNFETArrayModel(semiconducting_purity=0.5).sample_array(2000, seed=9)
        shorted = [d for d in dirty.devices if d.is_shorted]
        assert shorted
        ratios = np.array([d.on_off_ratio for d in shorted])
        assert np.median(ratios) < 100.0

    def test_spec_tightening_reduces_pass(self, clean_array):
        loose = clean_array.pass_fraction
        tight = type(clean_array)(
            devices=clean_array.devices,
            spec=ArraySpec(min_on_current_a=1e-6, min_on_off_ratio=1e6),
        ).pass_fraction
        assert tight <= loose

    def test_ten_thousand_device_run(self):
        # The Park-scale experiment: >10,000 measured devices.
        result = CNFETArrayModel(semiconducting_purity=0.99).sample_array(
            10000, seed=2014
        )
        assert result.n_devices == 10000
        assert 0.7 < result.pass_fraction < 1.0
        assert result.shorted_fraction > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CNFETArrayModel().sample_array(0)


class TestArrayResultEdgeCases:
    """The n_devices == 0 divide-by-zero fix plus array/tuple storage parity."""

    def test_empty_array_fractions_are_zero(self):
        empty = ArrayResult(devices=(), spec=ArraySpec())
        assert empty.n_devices == 0
        assert empty.pass_fraction == 0.0
        assert empty.open_fraction == 0.0
        assert empty.shorted_fraction == 0.0
        assert empty.on_currents_a().size == 0
        assert empty.on_off_ratios().size == 0

    def test_empty_array_from_columns(self):
        empty = ArrayResult(
            n_tubes=np.array([], dtype=int),
            n_metallic=np.array([], dtype=int),
            i_on_a=np.array([]),
            i_off_a=np.array([]),
        )
        assert empty.pass_fraction == 0.0 and empty.n_devices == 0

    def test_all_open_array(self):
        opens = tuple(
            DeviceSample(n_tubes=0, n_metallic=0, i_on_a=0.0, i_off_a=0.0)
            for _ in range(5)
        )
        result = ArrayResult(devices=opens, spec=ArraySpec())
        assert result.open_fraction == 1.0
        assert result.pass_fraction == 0.0
        assert result.shorted_fraction == 0.0
        assert np.all(np.isinf(result.on_off_ratios()))

    def test_constructor_requires_devices_or_columns(self):
        with pytest.raises(ValueError):
            ArrayResult(spec=ArraySpec())
        with pytest.raises(ValueError):
            ArrayResult(n_tubes=np.zeros(3), n_metallic=np.zeros(2),
                        i_on_a=np.zeros(3), i_off_a=np.zeros(3))

    def test_devices_tuple_matches_columns(self):
        sampled = CNFETArrayModel().sample_array(64, seed=1)
        devices = sampled.devices
        assert len(devices) == 64
        rebuilt = ArrayResult(devices=devices, spec=sampled.spec)
        assert rebuilt.pass_fraction == sampled.pass_fraction
        assert np.array_equal(rebuilt.on_currents_a(), sampled.on_currents_a())


class TestSampleArrayDeterminism:
    """Engine satellite: seed fixes the array, execution shape never does."""

    def test_chunk_size_invariance(self):
        model = CNFETArrayModel()
        reference = model.sample_array(1500, seed=3)
        for chunk_size in (97, 256, 1024):
            result = model.sample_array(1500, seed=3, chunk_size=chunk_size)
            assert np.array_equal(
                reference.on_currents_a(), result.on_currents_a()
            )

    def test_process_pool_invariance(self):
        model = CNFETArrayModel()
        reference = model.sample_array(1200, seed=8)
        pooled = model.sample_array(1200, seed=8, workers=2)
        assert np.array_equal(reference.on_currents_a(), pooled.on_currents_a())
        assert reference.pass_fraction == pooled.pass_fraction
